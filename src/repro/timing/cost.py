"""Configurable cost model of the multiprocessor timing subsystem.

Every quantity the timing model charges is a knob on one frozen
:class:`CostModel`:

* **operation costs** -- compute operations scale the executor's
  per-statement instruction estimate by :attr:`~CostModel.compute_scale`;
  optionally the estimate itself is re-derived with *weighted* operators
  (multiplies, divides and intrinsic calls cost more than adds), which
  :meth:`CostModel.compute_cost_fn` plugs into the executor's
  ``compute_cost`` latency hook so the engines and the sequential
  baseline price arithmetic identically;
* **access latencies** -- one latency per storage a reference can be
  served from: conventional memory (:attr:`~CostModel.memory_latency`,
  also the sequential baseline's latency), the speculative store
  (:attr:`~CostModel.specstore_latency`; equal to memory by default so
  speculation is never *magically* faster -- its costs are the explicit
  overheads below), and the per-segment private frame
  (:attr:`~CostModel.private_latency`, register-file-like);
* **speculation overheads** -- per-segment dispatch
  (:attr:`~CostModel.dispatch_overhead`), commit arbitration
  (:attr:`~CostModel.commit_base` + :attr:`~CostModel.commit_per_entry`
  per entry drained, also charged for an overflow drain), and the
  squash/restart penalty (:attr:`~CostModel.squash_penalty`) paid on
  every violation rollback.

The defaults keep an invariant the tests rely on: a speculative run on
one processor with a window of one performs the sequential operation
stream plus overheads, so its makespan is never below the sequential
cycle total.
"""

from __future__ import annotations

import weakref
from dataclasses import asdict, dataclass
from typing import Callable, Dict, Mapping, Optional

from repro.ir.expr import BinOp, Call, Expr, UnaryOp

#: Route tags carried by timing events (the engines' canonical route
#: vocabulary, plus the non-speculative default ``None`` -> conventional
#: memory).
from repro.runtime.engines import (  # noqa: F401 (shared vocabulary)
    ROUTE_PRIVATE,
    ROUTE_SPECULATIVE,
)

#: Event kinds of the op stream.
KIND_COMPUTE = "compute"
KIND_READ = "read"
KIND_WRITE = "write"


@dataclass(frozen=True)
class CostModel:
    """All cycle costs charged by the timing subsystem."""

    #: Cycles per executor compute cycle (ComputeOp.cycles multiplier).
    compute_scale: int = 1
    #: Conventional-memory access (sequential baseline and direct routes).
    memory_latency: int = 4
    #: Speculative-buffer access, own buffer or forwarded from an older one.
    specstore_latency: int = 4
    #: Per-segment private frame access (CASE privatizable references).
    private_latency: int = 2
    #: Charged per segment dispatched onto a processor.
    dispatch_overhead: int = 2
    #: Commit arbitration handshake (also paid for an overflow drain).
    commit_base: int = 6
    #: Per entry drained from speculative storage at commit / drain.
    commit_per_entry: int = 2
    #: Pipeline flush + refetch paid on every violation restart.
    squash_penalty: int = 8
    #: Operator weights of the compute-cost hook (base cost is 1).
    add_weight: int = 1
    mul_weight: int = 2
    div_weight: int = 8
    call_weight: int = 8

    # ------------------------------------------------------------------
    def op_cost(self, kind: str, cycles: int, route: Optional[str] = None) -> int:
        """Timing cycles of one operation event.

        ``cycles`` is the executor-level cost (meaningful for compute
        events only); ``route`` is how a memory event was served
        (``None`` means conventional memory, the sequential default).
        """
        if kind == KIND_COMPUTE:
            return self.compute_scale * cycles
        if route == ROUTE_PRIVATE:
            return self.private_latency
        if route == ROUTE_SPECULATIVE:
            return self.specstore_latency
        return self.memory_latency

    def commit_cost(self, entries: int) -> int:
        """Commit-arbitration cost of draining ``entries`` buffered entries."""
        return self.commit_base + self.commit_per_entry * max(0, entries)

    def batch_cost(
        self,
        compute_cycles: int,
        reads: Mapping[Optional[str], int],
        writes: Mapping[Optional[str], int],
    ) -> int:
        """Bulk price of one batched segment attempt.

        ``reads`` / ``writes`` count memory events per serving route
        (``None`` = conventional memory); the total equals summing
        :meth:`op_cost` over the attempt's op stream, collapsed into one
        call per batch.
        """
        total = self.compute_scale * compute_cycles
        for route, count in reads.items():
            total += self.op_cost(KIND_READ, 0, route) * count
        for route, count in writes.items():
            total += self.op_cost(KIND_WRITE, 0, route) * count
        return total

    # ------------------------------------------------------------------
    def expression_cost(self, expr: Expr) -> int:
        """Operator-weighted instruction estimate of evaluating ``expr``."""
        cost = 1
        for node in expr.walk():
            if isinstance(node, BinOp):
                if node.op == "*":
                    cost += self.mul_weight
                elif node.op in ("/", "**"):
                    cost += self.div_weight
                else:
                    cost += self.add_weight
            elif isinstance(node, UnaryOp):
                cost += self.add_weight
            elif isinstance(node, Call):
                cost += self.call_weight
        return cost

    def compute_cost_fn(self) -> Callable:
        """A per-statement cost function for the executor's latency hook.

        Returns a fresh memoized ``(stmt, expr) -> int`` closure pricing
        arithmetic with this model's operator weights.  The memo is
        keyed per ``(stmt, id(expr))``: the outer map is weakly keyed by
        statement (like the executor's default cache), and each
        statement holds an inner ``id(expr) -> cost`` map — keying by
        statement alone would silently return the first expression's
        cost for any other expression priced under the same statement.
        ``id(expr)`` is honest because a statement keeps its expressions
        alive for as long as the weak key itself exists; when the
        statement dies, the inner map (and its ids) die with it.
        """
        cache: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()
        expression_cost = self.expression_cost

        def compute_cost(stmt, expr) -> int:
            per_stmt = cache.get(stmt)
            if per_stmt is None:
                per_stmt = cache[stmt] = {}
            cached = per_stmt.get(id(expr))
            if cached is None:
                cached = per_stmt[id(expr)] = expression_cost(expr)
            return cached

        return compute_cost

    def as_dict(self) -> Dict[str, int]:
        """All knobs as a plain dict (for bench report metadata)."""
        return asdict(self)


#: The default model used by the bench's speedup scenario.
DEFAULT_COST_MODEL = CostModel()
