"""AnalysisCache concurrency regression tests.

The ``repro.serve`` daemon shares one :class:`AnalysisCache` across
concurrent sessions.  Before the lock landed, the unsynchronized
``hits``/``misses`` bumps lost updates under thread contention and
racing misses could hand two different result objects to two callers
(breaking the aliasing contract).  These tests hammer one cache from a
thread pool with a tiny interpreter switch interval to make the
pre-fix races all but certain.
"""

import sys
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.analysis.cache import AnalysisCache
from repro.idempotency.labeling import label_region
from repro.ir.dsl import parse_program

THREADS = 8
LOOKUPS_PER_THREAD = 4000


@pytest.fixture
def tight_switching():
    """Force frequent thread switches so counter races actually fire."""
    previous = sys.getswitchinterval()
    sys.setswitchinterval(1e-6)
    try:
        yield
    finally:
        sys.setswitchinterval(previous)


def _program():
    return parse_program(
        """
program cachehammer
  real x(64), y(64)
  region L do i = 2, 63
    y(i) = x(i-1) + x(i+1)
    liveout y
  end region
end program
"""
    )


class TestCacheCounterIntegrity:
    def test_hammered_counters_account_for_every_lookup(self, tight_switching):
        # Regression: with unlocked `self.hits += 1` / `self.misses += 1`
        # the totals lose updates under contention and stop summing to
        # the number of lookups performed.
        cache = AnalysisCache()
        region = _program().regions[0]
        barrier = threading.Barrier(THREADS)

        def hammer(worker):
            barrier.wait()
            for i in range(LOOKUPS_PER_THREAD):
                # A handful of distinct keys so hits and misses mix.
                cache.get_or_compute(region, ("k", i % 5), lambda: i)

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            for future in [pool.submit(hammer, t) for t in range(THREADS)]:
                future.result()

        total = THREADS * LOOKUPS_PER_THREAD
        assert cache.hits + cache.misses == total
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == total
        assert stats["entries"] == 5

    def test_concurrent_misses_share_one_value(self):
        # Duplicate-compute-on-concurrent-miss policy: racing misses may
        # both compute, but every caller must receive the *same* object
        # (first insert wins) so warm-hit aliasing stays intact.  The
        # barrier *inside* compute() forces both threads to be mid-miss
        # at once, which makes the pre-fix failure (each caller gets its
        # own object) deterministic rather than probabilistic.
        cache = AnalysisCache()
        region = _program().regions[0]
        in_compute = threading.Barrier(2, timeout=10)
        seen = []
        seen_lock = threading.Lock()

        def compute():
            in_compute.wait()
            return object()

        def miss_race(worker):
            value = cache.get_or_compute(region, "shared", compute)
            with seen_lock:
                seen.append(value)

        with ThreadPoolExecutor(max_workers=2) as pool:
            for future in [pool.submit(miss_race, t) for t in range(2)]:
                future.result()

        assert len({id(v) for v in seen}) == 1
        assert cache.peek(region, "shared") is seen[0]


class TestCacheConcurrentLabeling:
    def test_shared_cache_labels_identically_under_threads(self):
        # End-to-end shape of the daemon: many sessions labeling the
        # same region through one cache must agree with a single-thread
        # run and actually reuse entries (warm hits grow).
        program = _program()
        region = program.regions[0]
        reference = label_region(region, program=program)
        cache = AnalysisCache()
        results = []
        results_lock = threading.Lock()

        def label(worker):
            res = label_region(region, program=program, cache=cache)
            with results_lock:
                results.append(res)

        with ThreadPoolExecutor(max_workers=4) as pool:
            for future in [pool.submit(label, t) for t in range(12)]:
                future.result()

        for res in results:
            assert res.labels == reference.labels
            assert res.categories == reference.categories
        assert cache.hits > 0
        assert cache.misses > 0
