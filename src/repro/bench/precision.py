"""Labeling-precision scenario.

Runs the differential label-soundness checker (:mod:`repro.analysis.checker`)
over the benchmark workload families and a seeded fuzz batch and reports,
per family, how sharp the production labels are:

* ``idempotent_labels`` -- references production proves idempotent,
* ``production_conservative`` -- references the checker's exact
  re-derivation proves idempotent but production leaves speculative
  (each is also a ``precision`` finding),
* ``dynamically_clean_speculative`` -- speculative-labeled references
  the dynamic trace oracle observed no hazard for (an upper bound on
  what any static analysis could still win),
* ``precision_percent`` -- idempotent / (idempotent + conservative).

Soundness is asserted as a side effect: any ``unsound`` finding or
replay mismatch fails the scenario (non-zero ``unsound`` count in the
returned section; the CLI turns that into exit 1).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.analysis.checker import CheckConfig, check_program
from repro.bench.workloads import FAMILIES, generate
from repro.corpus import corpus

#: Default dynamic size per family (kept small: the checker replays
#: every instance and enumerates addresses exactly).
PRECISION_SIZE = 24
PRECISION_SMOKE_SIZE = 8
PRECISION_STATEMENTS = 6
PRECISION_SMOKE_STATEMENTS = 3
#: Fuzzed programs appended to the family sweep.
PRECISION_FUZZ = 25
PRECISION_SMOKE_FUZZ = 5
PRECISION_SEED = 20260807


def _empty_bucket() -> Dict[str, int]:
    return {
        "programs": 0,
        "regions": 0,
        "references": 0,
        "idempotent_labels": 0,
        "production_conservative": 0,
        "dynamically_clean_speculative": 0,
        "unsound": 0,
        "suspect": 0,
    }


def _accumulate(bucket: Dict[str, int], report) -> None:
    bucket["programs"] += 1
    bucket["unsound"] += report.unsound
    bucket["suspect"] += report.count("suspect")
    for region in report.regions:
        bucket["regions"] += 1
        bucket["references"] += region.references
        bucket["idempotent_labels"] += region.idempotent_labels
        bucket["production_conservative"] += region.production_conservative
        bucket["dynamically_clean_speculative"] += (
            region.dynamically_clean_speculative
        )


def _finish_bucket(bucket: Dict[str, int]) -> Dict:
    labelled = bucket["idempotent_labels"]
    denominator = labelled + bucket["production_conservative"]
    out: Dict = dict(bucket)
    out["precision_percent"] = (
        round(100.0 * labelled / denominator, 2) if denominator else None
    )
    return out


def measure_precision(
    size: int = PRECISION_SIZE,
    statements: int = PRECISION_STATEMENTS,
    families: Tuple[str, ...] = FAMILIES,
    fuzz: int = PRECISION_FUZZ,
    seed: int = PRECISION_SEED,
    config: Optional[CheckConfig] = None,
) -> Dict:
    """The ``precision`` section of the benchmark report."""
    config = config or CheckConfig()
    per_family: Dict[str, Dict] = {}
    totals = _empty_bucket()

    for family in families:
        bucket = _empty_bucket()
        workload = generate(family, size=size, statements=statements)
        report = check_program(workload.program, config=config)
        _accumulate(bucket, report)
        _accumulate(totals, report)
        per_family[family] = _finish_bucket(bucket)

    fuzz_bucket = _empty_bucket()
    for _index, program in corpus(fuzz, seed=seed):
        report = check_program(program, config=config)
        _accumulate(fuzz_bucket, report)
        _accumulate(totals, report)

    section = {
        "size": size,
        "statements": statements,
        "fuzz": fuzz,
        "seed": seed,
        "families": per_family,
        "fuzzed": _finish_bucket(fuzz_bucket),
        "totals": _finish_bucket(totals),
    }
    return section
