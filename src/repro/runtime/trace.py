"""Trace record-and-replay executor fast path.

The coroutine interpreter of :mod:`repro.runtime.executor` re-walks the
statement AST for every loop-region iteration: each statement costs a
generator frame, each sub-expression another ``yield from`` frame, and
each node an ``isinstance`` dispatch.  For the loop regions the paper
evaluates, the *shape* of that walk is identical in every iteration --
only the region index, the values read from memory, and the addresses
derived from them change.

This module exploits that: when a region body's control flow is
*input-independent*, the dynamic statement schedule is recorded once
into a flat event list (``DO`` loops unrolled, ``IF`` branches and
guards resolved), and subsequent iterations *replay* the recorded
schedule -- one flat Python loop instead of a tree walk, yielding the
exact same :class:`ReadOp` / :class:`WriteOp` / :class:`ComputeOp`
stream the interpreter would.

Replay eligibility (decided by :func:`trace_eligibility`):

* every control expression (``IF`` conditions, assignment guards, ``DO``
  bounds) reads only integer constants, enclosing inner ``DO`` indices,
  and scalars that are *read-only in the region* (from
  :func:`repro.analysis.readonly.read_only_variables` -- their values
  are fixed for the whole region execution);
* no control expression reads the region loop index (its value differs
  per iteration, so the schedule would differ too);
* the unrolled schedule stays below :data:`MAX_TRACE_EVENTS`.

Data expressions are unconstrained.  Each assignment is compiled once
into a *slot form*: its memory reads are enumerated in operation order,
the arithmetic becomes a postfix program over read-value slots (plus a
generated Python closure for the common case -- see below), and each
subscript dimension becomes either

* an **affine template** ``base + coeff * region_index`` (inner-index
  terms folded away at record time, when their values are known), or
* a compiled **slot program** for value-dependent addresses such as the
  ``x(col(t, k))`` gather of sparse codes -- the subscript reads occupy
  earlier slots, so replay never needs the AST.

Arithmetic programs are additionally translated to a single Python
lambda (``fn(values, iv, env)``) so the per-assignment cost at replay is
one native call instead of a per-instruction interpreter loop.  The
generated code reproduces the operator semantics of
:mod:`repro.ir.expr` (zero-division guards, 0/1 comparisons); any
exception falls back to the exact postfix interpreter, which implements
the reference overflow behaviour.

Reads of read-only scalars inside control expressions are recorded
together with the value observed at record time and *validated* during
replay: the replayed ``ReadOp`` is still yielded (so the op stream
matches the interpreter bit for bit) and the value the engine sends
back must equal the recorded one.  A mismatch means the eligibility
contract was broken and raises :class:`SimulationError` rather than
silently replaying a wrong path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.access import linear_terms
from repro.ir.expr import (
    BinOp,
    Call,
    Const,
    Expr,
    Index,
    UnaryOp,
    Var,
    _BINARY_OPS,
    _INTRINSICS,
    _UNARY_OPS,
)
from repro.ir.reference import MemoryReference
from repro.ir.stmt import Assign, Do, If, Statement
from repro.ir.region import LoopRegion
from repro.runtime.errors import SimulationError
from repro.runtime.executor import (
    ComputeOp,
    ReadOp,
    SegmentCoroutine,
    WriteOp,
    _compute_cost,
)

#: Hard cap on recorded events; bodies that unroll past this fall back
#: to the interpreter (keeps pathological trip counts from exhausting
#: memory for a speed optimisation).
MAX_TRACE_EVENTS = 500_000

_COMPUTE_1 = ComputeOp(1)

#: The only ways a generated arithmetic closure can diverge from the
#: reference postfix evaluator: intrinsic / operator domain errors that
#: :func:`_eval_arith` (matching ``apply_binary`` / ``apply_intrinsic``)
#: absorbs to 0.0 -- ``TypeError`` / ``ValueError`` / ``OverflowError``
#: from intrinsics and ``**``, plus ``ZeroDivisionError`` from integer
#: ``**`` with a negative exponent (the ``/ // %`` guards are generated
#: inline, but ``0 ** -1`` raises only in the closure form).  Anything
#: else (e.g. a ``KeyError`` for a missing env binding) is a recording
#: bug and must propagate, not silently re-run the interpreter.
_ARITH_FALLBACK_ERRORS = (
    TypeError,
    ValueError,
    OverflowError,
    ZeroDivisionError,
)


class TraceError(Exception):
    """Raised internally when a body cannot be traced; callers fall back."""


# ----------------------------------------------------------------------
# Postfix arithmetic programs
# ----------------------------------------------------------------------
# Instructions are tuples whose first element is one of these opcodes.
OP_CONST = 0         # (OP_CONST, value)
OP_LOCAL = 1         # (OP_LOCAL, name)   -- inner index, served from env
OP_REGION_INDEX = 2  # (OP_REGION_INDEX,) -- the replay iteration value
OP_BINOP = 3         # (OP_BINOP, fn, op_symbol)
OP_UNOP = 4          # (OP_UNOP, fn, op_symbol)
OP_CALL = 5          # (OP_CALL, fn, nargs, func_name)
OP_SLOT = 6          # (OP_SLOT, k)       -- k-th read value of the assignment

Instruction = Tuple
ArithProgram = Tuple[Instruction, ...]
#: Generated closure signature: fn(values, region_value, env) -> value.
ArithFn = Callable[[Sequence[float], float, Optional[Dict[str, float]]], float]


def _eval_arith(
    program: ArithProgram,
    values: Sequence[float],
    iv: float,
    env: Optional[Dict[str, float]] = None,
) -> float:
    """Run one postfix program; ``values`` are the read-value slots.

    This is the exact reference evaluator (the generated closures defer
    to it on any arithmetic exception).
    """
    stack: List[float] = []
    push = stack.append
    for ins in program:
        op = ins[0]
        if op == OP_SLOT:
            push(values[ins[1]])
        elif op == OP_CONST:
            push(ins[1])
        elif op == OP_BINOP:
            b = stack.pop()
            a = stack.pop()
            try:
                push(ins[1](a, b))
            except (OverflowError, ValueError):  # matches apply_binary
                push(0.0)
        elif op == OP_REGION_INDEX:
            push(iv)
        elif op == OP_LOCAL:
            push(env[ins[1]])
        elif op == OP_UNOP:
            push(ins[1](stack.pop()))
        else:  # OP_CALL
            n = ins[2]
            args = stack[-n:] if n else []
            if n:
                del stack[-n:]
            try:
                push(ins[1](*args))
            except (TypeError, ValueError, OverflowError):  # matches apply_intrinsic
                push(0.0)
    return stack[0]


# ----------------------------------------------------------------------
# Closure generation
# ----------------------------------------------------------------------
_DIRECT_BINOPS = {"+", "-", "*", "**"}
_COMPARE_BINOPS = {"<", "<=", ">", ">=", "==", "!="}
_GUARDED_BINOPS = {"/": "0.0", "//": "0", "%": "0"}


def codegen_arith(program: ArithProgram) -> Optional[ArithFn]:
    """Translate a postfix program into one Python lambda.

    Returns ``None`` when the program is a single trivial instruction
    (not worth a call) or uses something the generator does not cover.
    The generated expression mirrors :mod:`repro.ir.expr` semantics for
    the non-exceptional cases; callers catch any exception and re-run
    the program through :func:`_eval_arith` for exact behaviour.
    """
    stack: List[str] = []
    namespace: Dict[str, object] = {}
    for ins in program:
        op = ins[0]
        if op == OP_SLOT:
            stack.append(f"v[{ins[1]}]")
        elif op == OP_CONST:
            stack.append(repr(ins[1]))
        elif op == OP_REGION_INDEX:
            stack.append("iv")
        elif op == OP_LOCAL:
            stack.append(f"env[{ins[1]!r}]")
        elif op == OP_BINOP:
            sym = ins[2]
            b = stack.pop()
            a = stack.pop()
            if sym in _DIRECT_BINOPS:
                stack.append(f"({a} {sym} {b})")
            elif sym in _COMPARE_BINOPS:
                stack.append(f"(1 if {a} {sym} {b} else 0)")
            elif sym in _GUARDED_BINOPS:
                zero = _GUARDED_BINOPS[sym]
                stack.append(f"(({a}) {sym} ({b}) if ({b}) != 0 else {zero})")
            elif sym == "and":
                stack.append(f"(1 if (bool({a}) and bool({b})) else 0)")
            elif sym == "or":
                stack.append(f"(1 if (bool({a}) or bool({b})) else 0)")
            else:  # pragma: no cover - defensive
                return None
        elif op == OP_UNOP:
            sym = ins[2]
            a = stack.pop()
            if sym == "-":
                stack.append(f"(-{a})")
            elif sym == "+":
                stack.append(f"(+{a})")
            elif sym == "not":
                stack.append(f"(1 if not bool({a}) else 0)")
            elif sym == "abs":
                stack.append(f"abs({a})")
            else:  # pragma: no cover - defensive
                return None
        elif op == OP_CALL:
            n = ins[2]
            name = f"_intr_{ins[3]}"
            namespace[name] = ins[1]
            args = ", ".join(stack[-n:]) if n else ""
            if n:
                del stack[-n:]
            stack.append(f"{name}({args})")
        else:  # pragma: no cover - defensive
            return None
    expr_text = stack[0]
    if len(program) <= 1:
        return None  # single const/slot: tuple indexing is cheaper
    try:
        return eval(f"lambda v, iv, env: {expr_text}", namespace)
    except SyntaxError:  # pragma: no cover - defensive
        return None


# ----------------------------------------------------------------------
# Per-statement compilation (slot form)
# ----------------------------------------------------------------------
# A subscript dimension template is either
#   (DIM_AFFINE, const, region_coeff, ((local, coeff), ...))
# or
#   (DIM_PROGRAM, arith_program, arith_fn_or_None)
DIM_AFFINE = 0
DIM_PROGRAM = 1


@dataclass(frozen=True)
class CompiledAssign:
    """One assignment statement compiled to the slot form."""

    #: Per read, in operation order: (name, ref, dim_templates | None).
    #: Entries up to :attr:`rhs_read_count` belong to the right-hand
    #: side; the rest are target-subscript reads, which the executor
    #: performs *after* the cost ComputeOp (the split preserves the
    #: interpreter's exact operation order for scatter writes).
    read_specs: Tuple[Tuple, ...]
    rhs_read_count: int
    arith_program: ArithProgram
    arith_fn: Optional[ArithFn]
    needs_env: bool
    cost_op: ComputeOp
    target: str
    #: None for a scalar target, else per-dimension templates.
    target_dims: Optional[Tuple[Tuple, ...]]
    write_ref: Optional[MemoryReference]
    #: The source statement (carried for consumers that need the AST,
    #: e.g. batched pricing via ``CostModel.expression_cost``).
    stmt: Optional[Assign] = None


def _dim_template(
    expr: Expr, local_names: Set[str], region_index: str, refs, read_specs
) -> Tuple:
    """Compile one subscript dimension.

    Affine-in-induction-values dimensions get the cheap template; any
    other dimension (value-dependent addresses, non-linear index
    arithmetic) compiles to a slot program whose reads are hoisted into
    ``read_specs`` ahead of the enclosing element read.
    """
    lin = linear_terms(expr)
    if lin is not None:
        coeffs, const = lin
        region_coeff = 0
        locals_part: List[Tuple[str, int]] = []
        affine = True
        for name, coeff in coeffs.items():
            # Innermost binding wins (a shadowing inner DO index is a
            # local, not the region index).
            if name in local_names:
                locals_part.append((name, coeff))
            elif name == region_index:
                region_coeff = coeff
            else:
                affine = False  # reads memory: needs the program form
                break
        if affine:
            return (DIM_AFFINE, const, region_coeff, tuple(locals_part))
    program: List[Instruction] = []
    _compile_arith(expr, local_names, region_index, refs, read_specs, program)
    program = tuple(program)
    return (DIM_PROGRAM, program, codegen_arith(program))


def _compile_arith(
    expr: Expr,
    local_names: Set[str],
    region_index: str,
    refs,
    read_specs: List[Tuple],
    out: List[Instruction],
) -> None:
    """Compile ``expr`` to a postfix program, hoisting its memory reads.

    Reads are appended to ``read_specs`` in the exact operation order of
    ``executor._eval_expr`` (subscripts before the element they index,
    left before right), consuming the statement's extracted references
    from ``refs`` so every read spec carries its static
    :class:`MemoryReference` tag.
    """
    if isinstance(expr, Const):
        out.append((OP_CONST, expr.value))
        return
    if isinstance(expr, Var):
        # Innermost binding wins: an inner DO index that shadows the
        # region index must resolve to the (recorded) inner value, as
        # in executor ctx.locals.
        if expr.name in local_names:
            out.append((OP_LOCAL, expr.name))
            return
        if expr.name == region_index:
            out.append((OP_REGION_INDEX,))
            return
        out.append((OP_SLOT, len(read_specs)))
        read_specs.append((expr.name, next(refs, None), None))
        return
    if isinstance(expr, Index):
        dims = tuple(
            _dim_template(sub, local_names, region_index, refs, read_specs)
            for sub in expr.subscripts
        )
        out.append((OP_SLOT, len(read_specs)))
        read_specs.append((expr.name, next(refs, None), dims))
        return
    if isinstance(expr, BinOp):
        _compile_arith(expr.left, local_names, region_index, refs, read_specs, out)
        _compile_arith(expr.right, local_names, region_index, refs, read_specs, out)
        out.append((OP_BINOP, _BINARY_OPS[expr.op], expr.op))
        return
    if isinstance(expr, UnaryOp):
        _compile_arith(expr.operand, local_names, region_index, refs, read_specs, out)
        out.append((OP_UNOP, _UNARY_OPS[expr.op], expr.op))
        return
    if isinstance(expr, Call):
        for arg in expr.args:
            _compile_arith(arg, local_names, region_index, refs, read_specs, out)
        out.append((OP_CALL, _INTRINSICS[expr.func], len(expr.args), expr.func))
        return
    raise TraceError(f"cannot compile expression {expr!r}")


def compile_assign(
    stmt: Assign, local_names: Set[str], region_index: str
) -> CompiledAssign:
    """Compile ``stmt`` once; shared by every recorded instance of it."""
    refs = iter(stmt.reads or [])
    read_specs: List[Tuple] = []
    arith: List[Instruction] = []
    _compile_arith(stmt.rhs, local_names, region_index, refs, read_specs, arith)
    rhs_read_count = len(read_specs)
    if stmt.target_subscripts:
        target_dims = tuple(
            _dim_template(sub, local_names, region_index, refs, read_specs)
            for sub in stmt.target_subscripts
        )
    else:
        target_dims = None
    arith = tuple(arith)

    def program_uses_locals(program: ArithProgram) -> bool:
        return any(ins[0] == OP_LOCAL for ins in program)

    needs_env = program_uses_locals(arith)
    for _, _, dims in read_specs:
        if dims is not None:
            for tpl in dims:
                if tpl[0] == DIM_PROGRAM and program_uses_locals(tpl[1]):
                    needs_env = True
    if target_dims is not None:
        for tpl in target_dims:
            if tpl[0] == DIM_PROGRAM and program_uses_locals(tpl[1]):
                needs_env = True

    return CompiledAssign(
        read_specs=tuple(read_specs),
        rhs_read_count=rhs_read_count,
        arith_program=arith,
        arith_fn=codegen_arith(arith),
        needs_env=needs_env,
        cost_op=ComputeOp(_compute_cost(stmt, stmt.rhs)),
        target=stmt.target,
        target_dims=target_dims,
        write_ref=stmt.write,
        stmt=stmt,
    )


# ----------------------------------------------------------------------
# Prebuilt statement tree
# ----------------------------------------------------------------------
# Node kinds of the precompiled body tree walked by the recorder: every
# Assign is compiled exactly once, before the (possibly deeply unrolled)
# recording walk, so emission performs zero per-op dict lookups.
_N_ASSIGN = 0  # (_N_ASSIGN, stmt, CompiledAssign)
_N_IF = 1      # (_N_IF, stmt, then_nodes, else_nodes)
_N_DO = 2      # (_N_DO, stmt, body_nodes)


def _build_tree(
    body: Sequence[Statement], scope: Set[str], region_index: str
) -> List[Tuple]:
    """Precompile ``body`` into a parallel tree of statement nodes.

    Both arms of every ``IF`` are compiled even if never taken at record
    time -- slightly more conservative (an uncompilable dead branch now
    falls back to the interpreter), but it keeps the recording walk free
    of compilation entirely.
    """
    nodes: List[Tuple] = []
    for stmt in body:
        if isinstance(stmt, Assign):
            nodes.append(
                (_N_ASSIGN, stmt, compile_assign(stmt, scope, region_index))
            )
        elif isinstance(stmt, If):
            nodes.append(
                (
                    _N_IF,
                    stmt,
                    _build_tree(stmt.then_body, scope, region_index),
                    _build_tree(stmt.else_body, scope, region_index),
                )
            )
        elif isinstance(stmt, Do):
            nodes.append(
                (
                    _N_DO,
                    stmt,
                    _build_tree(stmt.body, scope | {stmt.index}, region_index),
                )
            )
        else:  # pragma: no cover - defensive
            raise TraceError(f"unknown statement {type(stmt).__name__}")
    return nodes


# ----------------------------------------------------------------------
# Record-time folding
# ----------------------------------------------------------------------
def _fold_dims(dim_templates: Tuple[Tuple, ...], env: Dict[str, float]):
    """Resolve inner-index terms of each dimension against ``env``.

    Returns ``(dims, affine, constant)``: each folded dim is either a
    ``(base, region_coeff)`` pair or a ``[program, fn]`` list (slot
    program form).  ``affine`` is True when no program dims remain;
    ``constant`` additionally means no region-index involvement, i.e.
    the subscript tuple is fixed for every iteration.
    """
    dims: List = []
    affine = True
    constant = True
    for tpl in dim_templates:
        if tpl[0] == DIM_AFFINE:
            _, const, region_coeff, locals_part = tpl
            base = const
            for name, coeff in locals_part:
                base += coeff * env[name]
            if region_coeff:
                constant = False
            dims.append((base, region_coeff))
        else:
            program = tpl[1]
            if not any(
                ins[0] in (OP_SLOT, OP_REGION_INDEX) for ins in program
            ):
                # Fully known at record time (e.g. mod(t, 4) over an
                # inner index): fold to a constant dimension.
                dims.append((int(round(_eval_arith(program, (), 0, env))), 0))
            elif len(program) == 1 and program[0][0] == OP_SLOT:
                # Plain gather dimension x(col(...)): the subscript IS
                # an earlier read value; represent it as its slot index.
                affine = False
                constant = False
                dims.append(program[0][1])
            else:
                affine = False
                constant = False
                dims.append([program, tpl[2]])
    return tuple(dims), affine, constant


# ----------------------------------------------------------------------
# Trace structure
# ----------------------------------------------------------------------
# Event opcodes for the recorded schedule.
EV_CHARGE = 0     # (EV_CHARGE,)
EV_COMPUTE = 1    # (EV_COMPUTE, ComputeOp)
EV_CTRL_READ = 2  # (EV_CTRL_READ, ReadOp, expected_value)
EV_ASSIGN = 3     # (EV_ASSIGN, rhs_reads, target_reads, arith_fn,
                  #  arith_program, env, cost_op, target, subs_or_dims,
                  #  subs_affine, subs_const, write_ref, compiled_assign)
                  # read entries: prebuilt ReadOp (fixed address),
                  #   (name, ref, dims) with all dims (base, coeff), or
                  #   (name, ref, dims, None) with mixed/program dims.
                  # target_reads are yielded after the cost ComputeOp,
                  # matching the interpreter's order for scatter writes.
                  # The trailing CompiledAssign lets batched replay price
                  # and re-derive the statement without the AST walk.

Event = Tuple


@dataclass
class SegmentTrace:
    """The recorded, replayable schedule of one loop-region body."""

    region: str
    region_index: str
    events: List[Event] = field(default_factory=list)
    _events_nocharge: Optional[List[Event]] = field(
        default=None, init=False, repr=False
    )

    def __len__(self) -> int:
        return len(self.events)

    def events_for(self, op_budget: Optional[int]) -> List[Event]:
        """Event list for one replay.

        Charge events only matter when an op budget is in force; the
        unbudgeted replay (the common case) iterates a pre-stripped
        list instead of dispatching on them per event.
        """
        if op_budget is not None:
            return self.events
        if self._events_nocharge is None:
            self._events_nocharge = [
                e for e in self.events if e[0] != EV_CHARGE
            ]
        return self._events_nocharge


# ----------------------------------------------------------------------
# Eligibility
# ----------------------------------------------------------------------
def _control_expr_ok(
    expr: Expr, scope: Set[str], invariant_scalars: Set[str]
) -> bool:
    """Control expressions may read constants, in-scope inner indices and
    region-read-only scalars only."""
    if any(isinstance(node, Index) for node in expr.walk()):
        return False
    for occ in expr.reads():
        if occ.name in scope:
            continue
        if occ.name in invariant_scalars:
            continue
        return False
    return True


def trace_eligibility(
    region: LoopRegion, read_only: Optional[Set[str]] = None
) -> Tuple[bool, str]:
    """Decide whether ``region``'s body control flow is input-independent.

    Returns ``(eligible, reason)``; the reason names the first offending
    expression when ineligible (useful in reports and the bench output).
    """
    if read_only is None:
        from repro.analysis.readonly import read_only_variables

        read_only = read_only_variables(region)
    invariant = {v for v in read_only}

    def check_body(body: Sequence[Statement], scope: Set[str]) -> Optional[str]:
        for stmt in body:
            if isinstance(stmt, Assign):
                if stmt.guard is not None and not _control_expr_ok(
                    stmt.guard, scope, invariant
                ):
                    return f"guard {stmt.guard} of {stmt.sid or stmt.target}"
            elif isinstance(stmt, If):
                if not _control_expr_ok(stmt.cond, scope, invariant):
                    return f"IF condition {stmt.cond}"
                reason = check_body(stmt.then_body, scope)
                if reason is None:
                    reason = check_body(stmt.else_body, scope)
                if reason is not None:
                    return reason
            elif isinstance(stmt, Do):
                for bound in (stmt.lower, stmt.upper, stmt.step):
                    if not _control_expr_ok(bound, scope, invariant):
                        return f"DO bound {bound} of loop {stmt.index}"
                reason = check_body(stmt.body, scope | {stmt.index})
                if reason is not None:
                    return reason
            else:  # pragma: no cover - defensive
                return f"unknown statement {type(stmt).__name__}"
        return None

    reason = check_body(region.body, set())
    if reason is not None:
        return False, f"control flow depends on region input: {reason}"
    return True, "eligible"


# ----------------------------------------------------------------------
# Recording
# ----------------------------------------------------------------------
def record_trace(
    region: LoopRegion,
    resolve: Callable[[str], float],
    read_only: Optional[Set[str]] = None,
) -> SegmentTrace:
    """Record the replayable schedule of ``region``'s body.

    ``resolve(name)`` supplies the value of a read-only scalar at record
    time (the sequential driver passes a direct memory read).  Call
    :func:`trace_eligibility` first; recording an ineligible body raises
    :class:`TraceError`.
    """
    eligible, reason = trace_eligibility(region, read_only=read_only)
    if not eligible:
        raise TraceError(reason)

    trace = SegmentTrace(region=region.name, region_index=region.index)
    events = trace.events
    # Precompile the whole body once into a parallel tree; the unrolled
    # recording walk below then emits from prebuilt CompiledAssigns with
    # no per-op dict lookups at all.
    tree = _build_tree(region.body, set(), region.index)

    def emit_assign(ca: CompiledAssign, env: Dict[str, float]) -> None:
        reads_folded: List = []
        for name, ref, dim_templates in ca.read_specs:
            if dim_templates is None:
                reads_folded.append(ReadOp(name, (), ref))
                continue
            dims, affine, constant = _fold_dims(dim_templates, env)
            if constant:
                reads_folded.append(
                    ReadOp(name, tuple(b for b, _ in dims), ref)
                )
            elif affine:
                reads_folded.append((name, ref, dims))
            else:
                reads_folded.append((name, ref, dims, None))
        rhs_reads = tuple(reads_folded[: ca.rhs_read_count])
        target_reads = tuple(reads_folded[ca.rhs_read_count :])
        if ca.target_dims is None:
            subs_or_dims: Tuple = ()
            subs_affine = True
            subs_const = True
        else:
            dims, subs_affine, subs_const = _fold_dims(ca.target_dims, env)
            subs_or_dims = (
                tuple(b for b, _ in dims) if subs_const else dims
            )
        events.append(
            (
                EV_ASSIGN,
                rhs_reads,
                target_reads,
                ca.arith_fn,
                ca.arith_program,
                dict(env) if ca.needs_env else None,
                ca.cost_op,
                ca.target,
                subs_or_dims,
                subs_affine,
                subs_const,
                ca.write_ref,
                ca,
            )
        )

    def eval_control(stmt: Statement, exprs: Sequence[Expr], env: Dict[str, float]):
        """Evaluate control expressions, recording their memory reads."""
        refs = iter(stmt.control_reads or [])

        def reader(name: str, subs: Tuple[int, ...]) -> float:
            if name in env:
                return env[name]
            # Eligibility guarantees a scalar read of a read-only variable.
            ref = next(refs, None)
            value = float(resolve(name))
            events.append((EV_CTRL_READ, ReadOp(name, (), ref), value))
            return value

        return [expr.evaluate(reader) for expr in exprs]

    def overflow() -> None:
        if len(events) > MAX_TRACE_EVENTS:
            raise TraceError(
                f"trace of region {region.name!r} exceeds "
                f"{MAX_TRACE_EVENTS} events"
            )

    def rec_body(nodes: Sequence[Tuple], env: Dict[str, float]):
        for node in nodes:
            overflow()
            kind = node[0]
            if kind == _N_ASSIGN:
                stmt = node[1]
                events.append((EV_CHARGE,))
                if stmt.guard is not None:
                    (guard_value,) = eval_control(stmt, (stmt.guard,), env)
                    events.append((EV_COMPUTE, _COMPUTE_1))
                    if not guard_value:
                        continue
                emit_assign(node[2], env)
            elif kind == _N_IF:
                stmt = node[1]
                events.append((EV_CHARGE,))
                (cond_value,) = eval_control(stmt, (stmt.cond,), env)
                events.append((EV_COMPUTE, _COMPUTE_1))
                rec_body(node[2] if cond_value else node[3], env)
            else:  # _N_DO
                stmt = node[1]
                events.append((EV_CHARGE,))
                lower, upper, step = eval_control(
                    stmt, (stmt.lower, stmt.upper, stmt.step), env
                )
                events.append((EV_COMPUTE, _COMPUTE_1))
                lo, hi, st = int(round(lower)), int(round(upper)), int(round(step))
                if st == 0:
                    raise TraceError(
                        f"DO loop {stmt.sid or stmt.index} has zero step"
                    )
                had = stmt.index in env
                shadowed = env.get(stmt.index)
                body_nodes = node[2]
                value = lo
                while (st > 0 and value <= hi) or (st < 0 and value >= hi):
                    overflow()
                    events.append((EV_CHARGE,))
                    env[stmt.index] = value
                    events.append((EV_COMPUTE, _COMPUTE_1))
                    rec_body(body_nodes, env)
                    value += st
                if had:
                    env[stmt.index] = shadowed
                else:
                    env.pop(stmt.index, None)

    rec_body(tree, {})
    return trace


# ----------------------------------------------------------------------
# Replay
# ----------------------------------------------------------------------
def _program_subs(dims, values, iv, env) -> Tuple[int, ...]:
    """Subscript tuple of a read/write with at least one program dim."""
    out = []
    for d in dims:
        kind = type(d)
        if kind is tuple:  # (base, region_coeff)
            out.append(d[0] + d[1] * iv)
        elif kind is int:  # slot index of a gather subscript
            out.append(int(round(values[d])))
        else:  # [program, fn]
            fn = d[1]
            if fn is not None:
                try:
                    value = fn(values, iv, env)
                except _ARITH_FALLBACK_ERRORS:
                    value = _eval_arith(d[0], values, iv, env)
            else:
                value = _eval_arith(d[0], values, iv, env)
            out.append(int(round(value)))
    return tuple(out)


def replay_segment(
    trace: SegmentTrace,
    region_value: float,
    op_budget: Optional[int] = None,
) -> SegmentCoroutine:
    """Replay one recorded iteration as an operation coroutine.

    Yields the identical operation stream (including op-budget charge
    points and budget-exceeded errors) that
    ``executor.segment_coroutine`` would produce for the same
    region-index value.
    """
    iv = region_value
    ops_charged = 0
    for event in trace.events_for(op_budget):
        kind = event[0]
        if kind == EV_ASSIGN:
            (
                _,
                rhs_reads,
                target_reads,
                arith_fn,
                arith_program,
                env,
                cost_op,
                target,
                subs_or_dims,
                subs_affine,
                subs_const,
                wref,
                _ca,
            ) = event
            values: List[float] = []
            for r in rhs_reads:
                if type(r) is ReadOp:
                    v = yield r
                elif len(r) == 3:  # all-affine address
                    dims = r[2]
                    if len(dims) == 2:
                        (b0, c0), (b1, c1) = dims
                        subs = (b0 + c0 * iv, b1 + c1 * iv)
                    elif len(dims) == 1:
                        b0, c0 = dims[0]
                        subs = (b0 + c0 * iv,)
                    else:
                        subs = tuple(b + c * iv for b, c in dims)
                    v = yield ReadOp(r[0], subs, r[1])
                else:  # value-dependent address: program dims
                    dims = r[2]
                    if len(dims) == 1 and type(dims[0]) is int:
                        subs = (int(round(values[dims[0]])),)
                    else:
                        subs = _program_subs(dims, values, iv, env)
                    v = yield ReadOp(r[0], subs, r[1])
                values.append(0.0 if v is None else v)
            if arith_fn is not None:
                try:
                    rhs_value = arith_fn(values, iv, env)
                except _ARITH_FALLBACK_ERRORS:
                    rhs_value = _eval_arith(arith_program, values, iv, env)
            else:
                rhs_value = _eval_arith(arith_program, values, iv, env)
            yield cost_op
            # Target-subscript reads execute after the cost op, exactly
            # as in executor._exec_assign.
            for r in target_reads:
                if type(r) is ReadOp:
                    v = yield r
                elif len(r) == 3:
                    dims = r[2]
                    if len(dims) == 1:
                        b0, c0 = dims[0]
                        subs = (b0 + c0 * iv,)
                    else:
                        subs = tuple(b + c * iv for b, c in dims)
                    v = yield ReadOp(r[0], subs, r[1])
                else:
                    v = yield ReadOp(
                        r[0], _program_subs(r[2], values, iv, env), r[1]
                    )
                values.append(0.0 if v is None else v)
            if subs_const:
                subs = subs_or_dims
            elif subs_affine:
                if len(subs_or_dims) == 2:
                    (b0, c0), (b1, c1) = subs_or_dims
                    subs = (b0 + c0 * iv, b1 + c1 * iv)
                elif len(subs_or_dims) == 1:
                    b0, c0 = subs_or_dims[0]
                    subs = (b0 + c0 * iv,)
                else:
                    subs = tuple(b + c * iv for b, c in subs_or_dims)
            else:
                subs = _program_subs(subs_or_dims, values, iv, env)
            yield WriteOp(target, subs, float(rhs_value), wref)
        elif kind == EV_COMPUTE:
            yield event[1]
        elif kind == EV_CHARGE:
            ops_charged += 1
            if op_budget is not None and ops_charged > op_budget:
                raise SimulationError(
                    f"operation budget of {op_budget} exceeded"
                )
        else:  # EV_CTRL_READ
            received = yield event[1]
            if received is not None and received != event[2]:
                raise SimulationError(
                    f"trace replay divergence in region {trace.region!r}: "
                    f"control read {event[1].variable!r} returned "
                    f"{received!r}, recorded {event[2]!r}"
                )
