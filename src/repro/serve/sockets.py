"""Transports: stdio wire sessions and the localhost TCP listener.

A :class:`Session` owns one line-delimited connection (stdin/stdout or
one accepted socket).  The session's reader thread parses each line
and hands the handler to the shared :class:`~repro.serve.pool
.WorkerPool`; responses are written back under a per-session lock so
concurrent workers never interleave partial lines.  Saturation is
answered inline from the reader thread (``OVERLOADED``), which is what
keeps the daemon responsive while the pool is busy.

``shutdown`` is transport-level, not a dispatcher method: the session
acknowledges it, stops reading, and (TCP) asks the server to stop
accepting -- so a scripted client can end an entire daemon run
cleanly.
"""

from __future__ import annotations

import socket
import threading
from typing import Callable, List, Optional

from repro.obs.log import get_logger
from repro.serve.dispatch import Dispatcher
from repro.serve.pool import PoolSaturated, WorkerPool
from repro.serve.protocol import (
    OVERLOADED,
    PARSE_ERROR,
    ProtocolError,
    Request,
    encode_line,
    error_response,
    ok_response,
    parse_request,
)

LOG = get_logger("serve")

#: Method handled by the session itself (stops the transport).
SHUTDOWN_METHOD = "shutdown"


class Session:
    """One client connection: reads request lines, writes response lines."""

    def __init__(
        self,
        reader,
        writer,
        dispatcher: Dispatcher,
        pool: WorkerPool,
        name: str = "stdio",
        on_shutdown: Optional[Callable[[], None]] = None,
    ):
        self.reader = reader
        self.writer = writer
        self.dispatcher = dispatcher
        self.pool = pool
        self.name = name
        self.on_shutdown = on_shutdown
        self._write_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    def run(self) -> None:
        """Serve until EOF or ``shutdown``; never raises to the caller."""
        LOG.debug("session open", session=self.name)
        for raw in self.reader:
            if isinstance(raw, bytes):
                try:
                    line = raw.decode("utf-8")
                except UnicodeDecodeError as exc:
                    self._write(
                        error_response(
                            None, PARSE_ERROR, f"parse error: {exc}"
                        )
                    )
                    continue
            else:
                line = raw
            line = line.strip()
            if not line:
                continue
            try:
                request = parse_request(line)
            except ProtocolError as exc:
                self._write(
                    error_response(None, exc.code, exc.message, exc.data)
                )
                continue
            if request.method == SHUTDOWN_METHOD:
                if not request.notification:
                    self._write(ok_response(request.id, {"stopping": True}))
                LOG.info("session shutdown", session=self.name)
                if self.on_shutdown is not None:
                    self.on_shutdown()
                break
            try:
                self.pool.submit(lambda req=request: self._respond(req))
            except PoolSaturated as exc:
                if not request.notification:
                    self._write(
                        error_response(
                            request.id,
                            OVERLOADED,
                            "server overloaded, retry later",
                            data={"max_inflight": exc.max_inflight},
                        )
                    )
        self._closed = True
        LOG.debug("session closed", session=self.name)

    # ------------------------------------------------------------------
    def _respond(self, request: Request) -> None:
        response = self.dispatcher.dispatch(request)
        if not request.notification:
            self._write(response)

    def _write(self, payload) -> None:
        data = encode_line(payload)
        try:
            with self._write_lock:
                self.writer.write(data)
                self.writer.flush()
        except (BrokenPipeError, ConnectionError, ValueError, OSError):
            # The client hung up mid-response; nothing left to tell it.
            self._closed = True


def serve_stdio(
    dispatcher: Dispatcher,
    pool: WorkerPool,
    reader=None,
    writer=None,
    on_shutdown: Optional[Callable[[], None]] = None,
) -> None:
    """Run one wire session over stdin/stdout (blocks until EOF)."""
    import sys

    session = Session(
        reader if reader is not None else sys.stdin.buffer,
        writer if writer is not None else sys.stdout.buffer,
        dispatcher,
        pool,
        name="stdio",
        on_shutdown=on_shutdown,
    )
    session.run()


class TCPServer:
    """Localhost TCP listener: one :class:`Session` thread per client.

    ``port=0`` binds an ephemeral port; read :attr:`port` after
    :meth:`start`.  A client's ``shutdown`` request (or
    :meth:`shutdown` from the owner) stops the accept loop and closes
    every open connection.
    """

    def __init__(
        self,
        dispatcher: Dispatcher,
        pool: WorkerPool,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.dispatcher = dispatcher
        self.pool = pool
        self.host = host
        self._requested_port = port
        self._listener: Optional[socket.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._sessions_lock = threading.Lock()
        self._client_sockets: List[socket.socket] = []
        self._session_threads: List[threading.Thread] = []
        self.stopped = threading.Event()

    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._listener is None:
            raise RuntimeError("server not started")
        return self._listener.getsockname()[1]

    def start(self) -> int:
        """Bind, listen and start accepting; returns the bound port."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.host, self._requested_port))
        listener.listen(32)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="serve-accept", daemon=True
        )
        self._accept_thread.start()
        LOG.info("listening", host=self.host, port=self.port)
        return self.port

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until the server is shut down."""
        return self.stopped.wait(timeout)

    def shutdown(self) -> None:
        """Stop accepting and close every open connection (idempotent)."""
        if self.stopped.is_set():
            return
        self.stopped.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        with self._sessions_lock:
            clients = list(self._client_sockets)
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        with self._sessions_lock:
            threads = list(self._session_threads)
        for thread in threads:
            thread.join(timeout=5)
        LOG.info("server stopped", host=self.host)

    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        counter = 0
        while not self.stopped.is_set():
            try:
                client, address = self._listener.accept()
            except OSError:
                break  # listener closed by shutdown()
            counter += 1
            name = f"tcp:{address[0]}:{address[1]}"
            with self._sessions_lock:
                self._client_sockets.append(client)
            thread = threading.Thread(
                target=self._serve_client,
                args=(client, name),
                name=f"serve-session-{counter}",
                daemon=True,
            )
            with self._sessions_lock:
                self._session_threads.append(thread)
            thread.start()

    def _serve_client(self, client: socket.socket, name: str) -> None:
        try:
            stream = client.makefile("rwb")
            session = Session(
                stream,
                stream,
                self.dispatcher,
                self.pool,
                name=name,
                on_shutdown=self._deferred_shutdown,
            )
            session.run()
            try:
                stream.close()
            except (OSError, ValueError):
                pass
        except (OSError, ValueError):
            pass
        finally:
            try:
                client.close()
            except OSError:
                pass
            with self._sessions_lock:
                if client in self._client_sockets:
                    self._client_sockets.remove(client)

    def _deferred_shutdown(self) -> None:
        # A session thread must not join itself: run the full shutdown
        # from a helper thread and let the session finish its loop.
        threading.Thread(
            target=self.shutdown, name="serve-shutdown", daemon=True
        ).start()
